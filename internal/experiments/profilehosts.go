package experiments

import (
	"fmt"
	"io"

	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/profile"
	"cellport/internal/sim"
)

// ProfileResult holds the §5.2 profiling reproduction.
type ProfileResult struct {
	// CoverageOneImage / CoverageSet: fraction of total runtime in
	// extraction+detection for 1 image and for the larger set (paper:
	// 87% and 96% — the paper's one-image number excludes the one-time
	// overhead, which we report separately).
	CoverageOneImage float64
	CoverageSet      float64
	SetSize          int
	// OneTimeFracPPE is the one-time overhead share of a 1-image PPE run
	// (paper: ~60%).
	OneTimeFracPPE float64
	// PerKernel coverage of per-image processing (paper: 8/54/6/28/2%).
	PerKernel map[marvel.KernelID]float64
	// Candidates are the kernel clusters the profiler proposes.
	Candidates []profile.Candidate
	// FlatReport is the rendered gprof-style profile of the set run.
	FlatReport string
}

// ProfileExp regenerates the §5.2 profiling step on the PPE.
func ProfileExp(cfg Config) (*ProfileResult, error) {
	setSize := 50
	if cfg.Quick {
		setSize = 8
	}
	sizes := []int{1, setSize}
	refs, err := RunIndexed(cfg.workers(), len(sizes), func(i int) (*marvel.ReferenceResult, error) {
		return cfg.artifacts().Reference(cost.NewPPE(), cfg.Workload(sizes[i]))
	})
	if err != nil {
		return nil, err
	}
	one, set := refs[0], refs[1]

	// Per-image coverage excluding the one-time overhead (the paper's
	// 87% counts extraction+detection against one image's full pipeline
	// within an amortized run).
	var kernels sim.Duration
	for _, t := range one.KernelTime {
		kernels += t
	}
	res := &ProfileResult{
		CoverageOneImage: kernels.Seconds() / one.PerImage.Seconds(),
		CoverageSet:      set.ProcessingCoverage(),
		SetSize:          setSize,
		OneTimeFracPPE:   one.OneTime.Seconds() / one.Total.Seconds(),
		PerKernel:        one.KernelCoverage(),
		Candidates: set.Profile.IdentifyKernels(profile.IdentifyOptions{
			MinCoreCoverage: 0.015,
			MaxCandidates:   8,
		}),
		FlatReport: set.Profile.Report(),
	}
	return res, nil
}

// RenderProfile prints the profiling reproduction.
func RenderProfile(w io.Writer, r *ProfileResult) {
	fmt.Fprintf(w, "§5.2 — profiling the reference application on the PPE\n\n")
	fmt.Fprintf(w, "extraction+detection coverage, 1 image (excl. one-time): %5.1f%%  (paper 87%%)\n",
		r.CoverageOneImage*100)
	fmt.Fprintf(w, "extraction+detection coverage, %d images (whole run):    %5.1f%%  (paper 96%%)\n",
		r.SetSize, r.CoverageSet*100)
	fmt.Fprintf(w, "one-time overhead share of a 1-image PPE run:            %5.1f%%  (paper ~60%%)\n\n",
		r.OneTimeFracPPE*100)
	fmt.Fprintf(w, "per-kernel coverage of per-image processing (paper 8/54/6/28/2%%):\n")
	for _, id := range marvel.KernelIDs {
		fmt.Fprintf(w, "  %-12s %5.1f%%\n", id, r.PerKernel[id]*100)
	}
	fmt.Fprintf(w, "\nkernel candidates proposed by call-graph clustering:\n")
	for _, c := range r.Candidates {
		fmt.Fprintf(w, "  %-18s coverage %5.1f%%  methods %v\n", c.Class, c.Coverage*100, c.Methods)
	}
	fmt.Fprintf(w, "\nflat profile (%d-image run):\n%s", r.SetSize, r.FlatReport)
}

// HostsResult holds the §5.2 reference-machine ratios.
type HostsResult struct {
	KernelSlowdownDesktop map[marvel.KernelID]float64 // PPE time / Desktop time
	KernelSlowdownLaptop  map[marvel.KernelID]float64
	PreprocSlowdownDesk   float64
	PreprocSlowdownLaptop float64
	OneTimeFrac           map[string]float64 // per host, 1-image run
}

// HostsExp regenerates the §5.2 host comparison.
func HostsExp(cfg Config) (*HostsResult, error) {
	w := cfg.Workload(1)
	hosts := []func() *cost.Model{cost.NewPPE, cost.NewDesktop, cost.NewLaptop}
	refs, err := RunIndexed(cfg.workers(), len(hosts), func(i int) (*marvel.ReferenceResult, error) {
		return cfg.artifacts().Reference(hosts[i](), w)
	})
	if err != nil {
		return nil, err
	}
	ppe, desk, lap := refs[0], refs[1], refs[2]
	res := &HostsResult{
		KernelSlowdownDesktop: map[marvel.KernelID]float64{},
		KernelSlowdownLaptop:  map[marvel.KernelID]float64{},
		OneTimeFrac:           map[string]float64{},
	}
	for _, id := range marvel.KernelIDs {
		res.KernelSlowdownDesktop[id] = ppe.KernelTime[id].Seconds() / desk.KernelTime[id].Seconds()
		res.KernelSlowdownLaptop[id] = ppe.KernelTime[id].Seconds() / lap.KernelTime[id].Seconds()
	}
	res.PreprocSlowdownDesk = ppe.PreprocessPerImage.Seconds() / desk.PreprocessPerImage.Seconds()
	res.PreprocSlowdownLaptop = ppe.PreprocessPerImage.Seconds() / lap.PreprocessPerImage.Seconds()
	for _, r := range []*marvel.ReferenceResult{ppe, desk, lap} {
		res.OneTimeFrac[r.Host] = r.OneTime.Seconds() / r.Total.Seconds()
	}
	return res, nil
}

// RenderHosts prints the host-ratio reproduction.
func RenderHosts(w io.Writer, r *HostsResult) {
	fmt.Fprintf(w, "§5.2 — reference machine comparison (1 image)\n\n")
	fmt.Fprintf(w, "kernel slow-down on the PPE (paper: ~3.2x vs Desktop, ~2.5x vs Laptop):\n")
	fmt.Fprintf(w, "  %-12s %10s %10s\n", "kernel", "vs Desktop", "vs Laptop")
	for _, id := range marvel.KernelIDs {
		fmt.Fprintf(w, "  %-12s %9.2fx %9.2fx\n", id,
			r.KernelSlowdownDesktop[id], r.KernelSlowdownLaptop[id])
	}
	fmt.Fprintf(w, "\npreprocessing slow-down (paper: 1.4x vs Desktop, 1.2x vs Laptop):\n")
	fmt.Fprintf(w, "  vs Desktop %.2fx, vs Laptop %.2fx\n", r.PreprocSlowdownDesk, r.PreprocSlowdownLaptop)
	fmt.Fprintf(w, "\none-time overhead share of a 1-image run (paper: ~60%% PPE, ~80%% hosts):\n")
	for _, h := range []string{"PPE", "Desktop", "Laptop"} {
		fmt.Fprintf(w, "  %-8s %5.1f%%\n", h, r.OneTimeFrac[h]*100)
	}
}
