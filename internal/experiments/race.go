package experiments

import (
	"fmt"
	"io"
	"math"

	"cellport/internal/exec"
	"cellport/internal/marvel"
	"cellport/internal/serve"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// The estimator-race experiment answers the question the calibrated
// simulator begs: how wrong is it? Every (scheme × geometry × batch)
// point the serving layer calibrates is run twice — once through the
// virtual-time simulation (the exact run that fills the calibration
// table) and once for real on the work-stealing executor, with the same
// slice plans, buffering depth and task-graph shape. The report carries
// per-point relative error between the simulated and measured batch
// speedups, and — the paper's Fig. 7 criterion — whether the simulator
// ranks job vs data distribution the same way the real execution does.
//
// Clock-domain discipline: every field derived from host wall time is
// JSON-tagged with a measured_ prefix. Stripping those keys leaves a
// report that is a pure function of the configuration, byte-identical
// across machines and runs; benchdiff skips measured_ keys so the
// committed baseline stays comparable.

// RaceConfig sizes the real-execution half of the race.
type RaceConfig struct {
	// Workers is the executor pool width (<= 0 selects GOMAXPROCS).
	Workers int
	// Reps is how many times each point's task graph runs for real; the
	// fastest wall time wins (0 selects 3).
	Reps int
}

// RacePoint is one (scheme, geometry, batch) point run both ways.
type RacePoint struct {
	Scheme string `json:"scheme"`
	Tall   bool   `json:"tall"`
	K      int    `json:"k"`

	// SimService is the simulated steady-state service time (Total −
	// OneTime) from the re-run, and TableMatch asserts it equals the
	// calibration table's entry exactly — the simulated half of the race
	// is byte-for-byte the run the serving layer placed bets on.
	SimService sim.Duration `json:"sim_service"`
	TableMatch bool         `json:"table_match"`
	// EstService is the Eqs. 1-3 estimate for the point (0 when the
	// estimator is inconclusive at this geometry).
	EstService sim.Duration `json:"est_service"`
	// SimSpeedup is k × sim(k=1)/sim(k): the simulated batch-coalescing
	// speedup relative to k single dispatches.
	SimSpeedup float64 `json:"sim_speedup"`
	// Mismatches counts executed images whose features or decisions
	// differ from the host reference (bit-exactness: must be 0).
	Mismatches int `json:"mismatches"`

	// The wall-clock half. WallNS is best-of-reps; Speedup is the
	// measured batch-coalescing speedup k × wall(k=1)/wall(k); RelErr is
	// |SimSpeedup − Speedup| / Speedup.
	WallNS  int64   `json:"measured_wall_ns"`
	Tasks   uint64  `json:"measured_tasks"`
	Steals  uint64  `json:"measured_steals"`
	Speedup float64 `json:"measured_speedup"`
	RelErr  float64 `json:"measured_rel_err"`
}

// RaceResult is the full estimator-error report.
type RaceResult struct {
	MaxBatch int         `json:"max_batch"`
	Points   []RacePoint `json:"points"`
	// AllTableMatch / AllBitExact summarize the deterministic
	// guarantees: every sim half equals its calibration entry, every
	// exec half equals the host reference bit for bit.
	AllTableMatch bool `json:"all_table_match"`
	AllBitExact   bool `json:"all_bit_exact"`
	// RankingPoints counts the decisive (geometry, k) comparisons where
	// the simulator separates job from data distribution by more than
	// 5%; only those score ranking agreement (a coin-flip gap agreeing
	// or not says nothing about the estimator).
	RankingPoints int `json:"ranking_points"`

	Workers int `json:"measured_workers"`
	Reps    int `json:"measured_reps"`
	// RankingAgreed counts decisive points where real execution ranks
	// the schemes the same way the simulator does; Agreement is the
	// fraction (1 when there are no decisive points). EstAgreed scores
	// the Eqs. 1-3 estimate against real execution the same way, over
	// decisive points where the estimate is conclusive.
	RankingAgreed int     `json:"measured_ranking_agreed"`
	Agreement     float64 `json:"measured_ranking_agreement"`
	EstPoints     int     `json:"measured_est_points"`
	EstAgreed     int     `json:"measured_est_agreed"`
	// MeanRelErr / MaxRelErr aggregate the per-point speedup errors
	// over the k > 1 points.
	MeanRelErr float64 `json:"measured_mean_rel_err"`
	MaxRelErr  float64 `json:"measured_max_rel_err"`
}

// raceGeomName labels a geometry in collector artifact labels.
func raceGeomName(tall bool) string {
	if tall {
		return "tall"
	}
	return "std"
}

// rankingMargin is the relative gap below which a sim scheme comparison
// is considered a tie and excluded from ranking agreement.
const rankingMargin = 0.05

// RaceExp runs the estimator race: calibrate the serving layer's service
// table, then re-run every calibration point with the real-execution
// backend attached and score the simulator against the wall clock.
func RaceExp(cfg Config) (*RaceResult, error) {
	base, err := cfg.serveBase()
	if err != nil {
		return nil, err
	}
	cal, err := serve.Calibrate(base)
	if err != nil {
		return nil, err
	}
	reps := cfg.Race.Reps
	if reps <= 0 {
		reps = 3
	}
	backend := exec.NewBackend(exec.Options{
		Workers:    cfg.Race.Workers,
		Reps:       reps,
		Artifacts:  base.Artifacts,
		Instrument: cfg.Collect != nil,
	})
	defer backend.Close()

	res := &RaceResult{
		MaxBatch:      cal.MaxBatch(),
		AllTableMatch: true,
		AllBitExact:   true,
		Workers:       backend.Workers(),
		Reps:          reps,
	}
	// wall / simSvc indexed by [tall][scheme][k] for speedup and ranking
	// lookups; k is iterated ascending so k=1 is always present first.
	type pointKey struct {
		tall   bool
		scheme serve.Scheme
		k      int
	}
	wall := map[pointKey]int64{}
	simSvc := map[pointKey]sim.Duration{}

	for _, tall := range []bool{false, true} {
		for _, s := range []serve.Scheme{serve.SchemeJob, serve.SchemeData} {
			for k := 1; k <= cal.MaxBatch(); k++ {
				pc := base.RacePointConfig(s, tall, k)
				pc.Exec = backend
				label := fmt.Sprintf("race/%s/%s/k%d", s, raceGeomName(tall), k)
				rp, err := cfg.runPorted(trace.DomainSim+label, pc)
				if err != nil {
					return nil, fmt.Errorf("race point %s: %w", label, err)
				}
				er := rp.Exec
				if er == nil {
					return nil, fmt.Errorf("race point %s: backend returned no run", label)
				}
				if cfg.Collect != nil {
					cfg.Collect.AddArtifacts(trace.DomainExec+label, er.Trace, er.Metrics)
				}

				ref, err := base.Artifacts.Reference(pc.MachineConfig.PPEModel, pc.Workload)
				if err != nil {
					return nil, fmt.Errorf("race point %s: reference: %w", label, err)
				}
				mism := 0
				if len(er.Images) != len(ref.Images) {
					mism = len(ref.Images)
				} else {
					for i := range er.Images {
						mism += marvel.CompareImageResults(&ref.Images[i], &er.Images[i])
					}
				}

				key := pointKey{tall, s, k}
				p := RacePoint{
					Scheme:     s.String(),
					Tall:       tall,
					K:          k,
					SimService: rp.Total - rp.OneTime,
					EstService: cal.EstimatedService(s, tall, k),
					Mismatches: mism,
					WallNS:     er.WallNS,
					Tasks:      er.Tasks,
					Steals:     er.Steals,
				}
				p.TableMatch = p.SimService == cal.MeasuredService(s, tall, k)
				wall[key] = p.WallNS
				simSvc[key] = p.SimService

				if base1 := simSvc[pointKey{tall, s, 1}]; base1 > 0 && p.SimService > 0 {
					p.SimSpeedup = float64(k) * float64(base1) / float64(p.SimService)
				}
				if w1 := wall[pointKey{tall, s, 1}]; w1 > 0 && p.WallNS > 0 {
					p.Speedup = float64(k) * float64(w1) / float64(p.WallNS)
				}
				if p.Speedup > 0 {
					p.RelErr = math.Abs(p.SimSpeedup-p.Speedup) / p.Speedup
				}

				res.AllTableMatch = res.AllTableMatch && p.TableMatch
				res.AllBitExact = res.AllBitExact && mism == 0
				res.Points = append(res.Points, p)
			}
		}
	}

	// Aggregate speedup error over the k > 1 points (k = 1 is the
	// definitional baseline on both clocks).
	nErr := 0
	for _, p := range res.Points {
		if p.K == 1 || p.Speedup <= 0 {
			continue
		}
		nErr++
		res.MeanRelErr += p.RelErr
		if p.RelErr > res.MaxRelErr {
			res.MaxRelErr = p.RelErr
		}
	}
	if nErr > 0 {
		res.MeanRelErr /= float64(nErr)
	}

	// Ranking agreement (Fig. 7 criterion): at each (geometry, k), does
	// real execution prefer the same scheme the simulator does? Only
	// decisive sim gaps count; the estimator is scored the same way
	// where it is conclusive.
	for _, tall := range []bool{false, true} {
		for k := 1; k <= cal.MaxBatch(); k++ {
			job := simSvc[pointKey{tall, serve.SchemeJob, k}]
			data := simSvc[pointKey{tall, serve.SchemeData, k}]
			wj := wall[pointKey{tall, serve.SchemeJob, k}]
			wd := wall[pointKey{tall, serve.SchemeData, k}]
			if job <= 0 || data <= 0 || wj <= 0 || wd <= 0 {
				continue
			}
			gap := float64(job)/float64(data) - 1
			if math.Abs(gap) <= rankingMargin {
				continue
			}
			res.RankingPoints++
			simPrefersJob := gap < 0
			measPrefersJob := wj < wd
			if simPrefersJob == measPrefersJob {
				res.RankingAgreed++
			}
			ej := cal.EstimatedService(serve.SchemeJob, tall, k)
			ed := cal.EstimatedService(serve.SchemeData, tall, k)
			if ej > 0 && ed > 0 {
				res.EstPoints++
				if (ej < ed) == measPrefersJob {
					res.EstAgreed++
				}
			}
		}
	}
	res.Agreement = 1
	if res.RankingPoints > 0 {
		res.Agreement = float64(res.RankingAgreed) / float64(res.RankingPoints)
	}
	return res, nil
}

// RenderRace prints the estimator-error report.
func RenderRace(w io.Writer, r *RaceResult) {
	fmt.Fprintf(w, "Estimator race — %d points, %d workers, best of %d reps\n",
		len(r.Points), r.Workers, r.Reps)
	fmt.Fprintf(w, "%-10s %-5s %2s %12s %12s %10s %8s %8s %7s\n",
		"scheme", "geom", "k", "sim-svc", "est-svc", "wall-ms", "sim-SU", "real-SU", "err%")
	for _, p := range r.Points {
		est := "-"
		if p.EstService > 0 {
			est = p.EstService.String()
		}
		fmt.Fprintf(w, "%-10s %-5s %2d %12s %12s %10.3f %8.3f %8.3f %7.2f\n",
			p.Scheme, raceGeomName(p.Tall), p.K, p.SimService, est,
			float64(p.WallNS)/1e6, p.SimSpeedup, p.Speedup, 100*p.RelErr)
	}
	fmt.Fprintf(w, "bit-exact: %v | table-match: %v\n", r.AllBitExact, r.AllTableMatch)
	fmt.Fprintf(w, "speedup error: mean %.2f%%, max %.2f%%\n", 100*r.MeanRelErr, 100*r.MaxRelErr)
	fmt.Fprintf(w, "scheme ranking: sim agrees with real execution on %d/%d decisive points (%.0f%%)\n",
		r.RankingAgreed, r.RankingPoints, 100*r.Agreement)
	if r.EstPoints > 0 {
		fmt.Fprintf(w, "Eqs. 1-3 estimate agrees with real execution on %d/%d conclusive points\n",
			r.EstAgreed, r.EstPoints)
	}
}
