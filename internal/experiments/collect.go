package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"cellport/internal/cell"
	"cellport/internal/marvel"
	"cellport/internal/metrics"
	"cellport/internal/trace"
)

// Collector gathers per-run observability artifacts across an experiment:
// each labelled ported run contributes its span/instant recording and its
// metrics snapshot. Runs execute concurrently through the worker pool, so
// Add is mutex-guarded; exported output is sorted by label, keeping the
// artifacts deterministic regardless of completion order.
type Collector struct {
	mu   sync.Mutex
	runs []CollectedRun
}

// CollectedRun is one ported run's observability record.
type CollectedRun struct {
	Label   string
	Trace   *trace.Recorder
	Metrics *metrics.Snapshot
}

// Add records one run. Nil-safe: a nil collector discards the record, so
// experiment code can call it unconditionally.
func (c *Collector) Add(label string, res *marvel.PortedResult) {
	if c == nil || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, CollectedRun{Label: label, Trace: res.Trace, Metrics: res.Metrics})
}

// AddArtifacts records an observability artifact that did not come from
// a single ported run — e.g. one serving blade's batch timeline and
// counters. Nil-safe on the collector and on either artifact.
func (c *Collector) AddArtifacts(label string, rec *trace.Recorder, snap *metrics.Snapshot) {
	if c == nil || (rec == nil && snap == nil) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, CollectedRun{Label: label, Trace: rec, Metrics: snap})
}

// Runs returns the collected records sorted by label (ties keep insertion
// order).
func (c *Collector) Runs() []CollectedRun {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]CollectedRun(nil), c.runs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// WriteChromeTrace exports every collected run as one Chrome trace
// document: one process per run (pid in label order), one thread track
// per lane.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	var procs []trace.ChromeProcess
	for i, r := range c.Runs() {
		if r.Trace == nil {
			continue
		}
		procs = append(procs, trace.ChromeProcess{Pid: i + 1, Name: r.Label, Rec: r.Trace})
	}
	return trace.WriteChrome(w, procs)
}

// metricsDoc is the flat metrics artifact: one entry per run, label-sorted.
type metricsDoc struct {
	Runs []metricsRun `json:"runs"`
}

type metricsRun struct {
	Label   string            `json:"label"`
	Metrics *metrics.Snapshot `json:"metrics"`
}

// WriteMetricsJSON exports every collected run's snapshot as indented,
// deterministic JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	doc := metricsDoc{Runs: []metricsRun{}}
	for _, r := range c.Runs() {
		if r.Metrics == nil {
			continue
		}
		doc.Runs = append(doc.Runs, metricsRun{Label: r.Label, Metrics: r.Metrics})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runPorted executes one ported run under this configuration's collection
// policy: with a collector armed, the run gets a private recorder and
// registry (cloning the machine config so concurrent runs never share
// instrumentation), and its artifacts land in the collector under label.
// Without a collector the config passes through untouched — the exact
// uninstrumented path.
func (c Config) runPorted(label string, pc marvel.PortedConfig) (*marvel.PortedResult, error) {
	if c.Collect != nil {
		mc := cell.DefaultConfig()
		if pc.MachineConfig != nil {
			mc = *pc.MachineConfig
		}
		mc.Tracer = trace.NewRecorder()
		mc.Metrics = metrics.NewRegistry()
		pc.MachineConfig = &mc
	}
	res, err := marvel.RunPorted(pc)
	if err != nil {
		return nil, err
	}
	c.Collect.Add(label, res)
	return res, nil
}
