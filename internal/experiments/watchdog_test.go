package experiments

import (
	"testing"

	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// TestFaultsExpWatchdogOverride pins the -watchdog plumbing end to end:
// a dropped DMA hangs one kernel invocation until the watchdog fires, so
// shrinking the watchdog from the 50ms default to 2ms recovers the run
// strictly faster while both runs record the timeout.
func TestFaultsExpWatchdogOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six MultiSPE simulations")
	}
	measure := func(wd sim.Duration) *FaultsResult {
		t.Helper()
		cfg := Config{
			Quick:     true,
			Seed:      20070710,
			Parallel:  4,
			Artifacts: marvel.NewArtifactCache(),
			FaultSpec: "dma-drop:spe=0,n=1",
			Watchdog:  wd,
		}
		res, err := FaultsExp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.WatchdogTimeouts < 1 {
			t.Fatalf("watchdog %v: no timeout recorded for the hung DMA: %+v", wd, res.Report)
		}
		return res
	}
	slow := measure(0) // DefaultWatchdog
	fast := measure(2 * sim.Millisecond)
	if fast.Faulted >= slow.Faulted {
		t.Fatalf("2ms watchdog did not recover faster: %v vs default %v", fast.Faulted, slow.Faulted)
	}
}

// TestServeBaseWatchdogPlumbed checks the serve/chaos path carries the
// override into every dispatch simulation's config.
func TestServeBaseWatchdogPlumbed(t *testing.T) {
	cfg := serveTestConfig(1)
	cfg.Watchdog = 250 * sim.Microsecond
	base, err := cfg.serveBase()
	if err != nil {
		t.Fatal(err)
	}
	if base.Watchdog != cfg.Watchdog {
		t.Fatalf("serve base watchdog %v, want %v", base.Watchdog, cfg.Watchdog)
	}
}
