package experiments

import (
	"fmt"
	"io"

	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// Scaling is an extension beyond the paper's evaluation: the paper
// schedules one kernel per SPE (task parallelism) and names data
// parallelism across SPEs as a further layer (§2) without evaluating it.
// This experiment row-splits individual extraction kernels across 1–8
// SPEs and reports time, speed-up and parallel efficiency — the natural
// next step once the correlogram dominates the parallel schedule (it
// bounds scenario 2/3 at ~30×; splitting it lifts that bound).

// ScalingRow is one kernel × SPE-count measurement.
type ScalingRow struct {
	Kernel     marvel.KernelID
	NSPEs      int
	Time       sim.Duration
	SpeedUp    float64 // vs the same kernel on 1 SPE
	Efficiency float64 // SpeedUp / NSPEs
	Matches    bool    // merged feature equals the whole-image reference
}

// Scaling measures data-parallel extraction for the windowed kernels. The
// kernel × SPE-count sweep fans out wheel-per-job over a drained
// ShardedEngine (RunWheels); speed-ups are derived afterward against each
// kernel's 1-SPE row.
func Scaling(cfg Config) ([]ScalingRow, error) {
	w := cfg.Workload(1)
	kernels := []marvel.KernelID{marvel.KCC, marvel.KEH, marvel.KCH, marvel.KTX}
	counts := []int{1, 2, 4, 8}
	rows, err := RunWheels(cfg.workers(), len(kernels)*len(counts), func(i int) (ScalingRow, error) {
		id, n := kernels[i/len(counts)], counts[i%len(counts)]
		res, err := marvel.RunDataParallelExtraction(id, n, w, marvel.Optimized, MachineConfig())
		if err != nil {
			return ScalingRow{}, fmt.Errorf("scaling %s/%d: %w", id, n, err)
		}
		return ScalingRow{Kernel: id, NSPEs: n, Time: res.Time, Matches: res.Matches}, nil
	})
	if err != nil {
		return nil, err
	}
	base := map[marvel.KernelID]sim.Duration{}
	for _, r := range rows {
		if r.NSPEs == 1 {
			base[r.Kernel] = r.Time
		}
	}
	for i := range rows {
		rows[i].SpeedUp = base[rows[i].Kernel].Seconds() / rows[i].Time.Seconds()
		rows[i].Efficiency = rows[i].SpeedUp / float64(rows[i].NSPEs)
	}
	return rows, nil
}

// RenderScaling prints the scaling table.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "Extension — data-parallel extraction across SPEs (row splitting,\n")
	fmt.Fprintf(w, "halos clamped at image bounds; merged output verified bit-exact)\n\n")
	fmt.Fprintf(w, "%-12s %6s %12s %9s %11s %8s\n", "Kernel", "SPEs", "time", "speed-up", "efficiency", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %6d %12s %8.2fx %10.1f%% %8v\n",
			r.Kernel, r.NSPEs, r.Time, r.SpeedUp, r.Efficiency*100, r.Matches)
	}
}

// PipelineRow compares a schedule's per-image time and PPE speed-up.
type PipelineRow struct {
	Scenario marvel.Scenario
	PerImage sim.Duration
	SpeedUp  float64 // vs the PPE reference, per image
}

// Pipeline measures the extension schedule that overlaps PPE
// preprocessing of image i+1 with SPE processing of image i, against the
// paper's best scenario. Per-image preprocessing bounds the paper's
// schedules from below; the pipeline hides the SPE work behind it.
func Pipeline(cfg Config) ([]PipelineRow, error) {
	n := 8
	if cfg.Quick {
		n = 4
	}
	w := cfg.Workload(n)
	scens := []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE2, marvel.Pipelined}
	// Job 0 is the PPE reference; jobs 1..3 the ported schedules.
	results, err := RunIndexed(cfg.workers(), 1+len(scens), func(i int) (any, error) {
		if i == 0 {
			return cfg.artifacts().Reference(cost.NewPPE(), w)
		}
		scen := scens[i-1]
		return cfg.runPorted(fmt.Sprintf("pipeline/%s/n=%d", scen, n), cfg.ported(w, scen, marvel.Optimized))
	})
	if err != nil {
		return nil, err
	}
	ref := results[0].(*marvel.ReferenceResult)
	var rows []PipelineRow
	for i, scen := range scens {
		res := results[1+i].(*marvel.PortedResult)
		rows = append(rows, PipelineRow{
			Scenario: scen,
			PerImage: res.PerImage,
			SpeedUp:  ref.PerImage.Seconds() / res.PerImage.Seconds(),
		})
	}
	return rows, nil
}

// RenderPipeline prints the pipeline comparison.
func RenderPipeline(w io.Writer, rows []PipelineRow) {
	fmt.Fprintf(w, "Extension — cross-image pipelining (PPE preprocesses image i+1\n")
	fmt.Fprintf(w, "while the SPEs process image i; detection replicated as in\n")
	fmt.Fprintf(w, "scenario 3):\n\n")
	fmt.Fprintf(w, "%-12s %14s %12s\n", "schedule", "per-image", "vs PPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14s %11.2fx\n", r.Scenario, r.PerImage, r.SpeedUp)
	}
}
