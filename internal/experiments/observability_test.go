package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/marvel"
	"cellport/internal/metrics"
	"cellport/internal/trace"
)

// resultJSON serializes a PortedResult the way the -json artifact does;
// Trace and Metrics carry json:"-" so instrumented and uninstrumented
// runs must byte-match here.
func resultJSON(t *testing.T, res *marvel.PortedResult) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runPair executes the same ported configuration twice — bare, and with a
// recorder + registry armed — and asserts byte-identical results and
// EventCount (the replay fingerprint): instrumentation must be invisible
// to the simulation.
func runPair(t *testing.T, pc marvel.PortedConfig, label string) *marvel.PortedResult {
	t.Helper()
	bare, err := marvel.RunPorted(pc)
	if err != nil {
		t.Fatalf("%s: bare run: %v", label, err)
	}
	mc := *pc.MachineConfig
	mc.Tracer = trace.NewRecorder()
	mc.Metrics = metrics.NewRegistry()
	pc.MachineConfig = &mc
	inst, err := marvel.RunPorted(pc)
	if err != nil {
		t.Fatalf("%s: instrumented run: %v", label, err)
	}
	if bare.EventCount != inst.EventCount {
		t.Errorf("%s: EventCount %d (bare) != %d (instrumented): instrumentation perturbed the engine",
			label, bare.EventCount, inst.EventCount)
	}
	if !bytes.Equal(resultJSON(t, bare), resultJSON(t, inst)) {
		t.Errorf("%s: PortedResult JSON differs with instrumentation on", label)
	}
	if inst.Trace == nil || len(inst.Trace.Spans()) == 0 {
		t.Errorf("%s: instrumented run recorded no spans", label)
	}
	if inst.Metrics == nil || len(inst.Metrics.Samples) == 0 {
		t.Errorf("%s: instrumented run snapshot is empty", label)
	}
	return inst
}

func TestInstrumentationFingerprintNeutralFig7Grid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		for _, n := range cfg.setSizes() {
			label := fmt.Sprintf("%s/n=%d", scen, n)
			runPair(t, cfg.ported(cfg.Workload(n), scen, marvel.Optimized), label)
		}
	}
}

func TestInstrumentationFingerprintNeutralUnderFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	plan := fault.Seeded(1, MachineConfig().NumSPEs)
	pc := cfg.ported(cfg.Workload(2), marvel.MultiSPE, marvel.Optimized)
	pc.Validate = true
	pc.Faults = plan
	inst := runPair(t, pc, "faults/seed=1")
	// The supervised run must surface fault instants and supervisor
	// counters through the observability layer.
	if inst.Faults != nil && len(inst.Faults.Injected) > 0 {
		if len(inst.Trace.Instants()) == 0 {
			t.Error("faults injected but no instant events recorded")
		}
		if s, ok := inst.Metrics.Get("supervisor", "faults_injected", "counter"); !ok || s.Value == 0 {
			t.Error("supervisor fault counters missing from snapshot")
		}
	}
}

func TestCollectorChromeTraceMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Collect = &Collector{}
	if _, err := Fig7(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Collect.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Pid int     `json:"pid"`
			Tid int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("collector chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("collector chrome trace is empty")
	}
	type track struct{ pid, tid int }
	last := map[track]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := track{ev.Pid, ev.Tid}
		if prev, ok := last[k]; ok && ev.Ts < prev {
			t.Fatalf("track %v: ts %v after %v — not monotonic", k, ev.Ts, prev)
		}
		last[k] = ev.Ts
	}

	// Determinism: exporting twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := cfg.Collect.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome trace export is not deterministic")
	}
	var m1, m2 bytes.Buffer
	if err := cfg.Collect.WriteMetricsJSON(&m1); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Collect.WriteMetricsJSON(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatal("metrics export is not deterministic")
	}
}
