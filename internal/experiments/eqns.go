package experiments

import (
	"fmt"
	"io"
	"math"

	"cellport/internal/amdahl"
	"cellport/internal/marvel"
)

// EqnsResult holds the §4.2 worked examples and the §5.5 estimate-vs-
// measured validation.
type EqnsResult struct {
	// Worked Eq. 1 examples (paper: 1.0989 and 1.1098).
	Eq1At10x, Eq1At100x float64
	// Estimates from Eqs. 2/3 fed with OUR measured coverage and kernel
	// speed-ups, vs OUR measured per-image application speed-ups (both
	// over the PPE) — the paper validates its estimator the same way and
	// reports errors under 2%.
	Scenarios []ScenarioCheck
}

// ScenarioCheck is one scheduling scenario's estimate vs measurement.
type ScenarioCheck struct {
	Name      string
	Estimate  float64
	Measured  float64
	ErrorFrac float64
}

// Eqns regenerates the estimator validation.
func Eqns(cfg Config) (*EqnsResult, error) {
	res := &EqnsResult{}
	var err error
	if res.Eq1At10x, err = amdahl.SpeedUp1(amdahl.Kernel{Name: "k", Fraction: 0.10, SpeedUp: 10}); err != nil {
		return nil, err
	}
	if res.Eq1At100x, err = amdahl.SpeedUp1(amdahl.Kernel{Name: "k", Fraction: 0.10, SpeedUp: 100}); err != nil {
		return nil, err
	}

	// Measure kernel fractions and speed-ups once (SingleSPE round trips).
	ref, single, err := kernelRoundTrips(cfg, marvel.Optimized)
	if err != nil {
		return nil, err
	}
	cov := ref.KernelCoverage()
	speed := map[marvel.KernelID]float64{}
	var kernels []amdahl.Kernel
	for _, id := range marvel.KernelIDs {
		speed[id] = ref.KernelTime[id].Seconds() / single.KernelTime[id].Seconds()
		kernels = append(kernels, amdahl.Kernel{
			Name: id.String(), Fraction: cov[id], SpeedUp: speed[id],
		})
	}

	// Scenario 1 — Eq. 2, all kernels sequential.
	est1, err := amdahl.SpeedUpSequential(kernels)
	if err != nil {
		return nil, err
	}
	// Scenario 2 — Eq. 3: the four extractions in parallel, detection as
	// its own sequential group.
	var extracts amdahl.Group
	var detects amdahl.Group
	for _, k := range kernels {
		if k.Name == marvel.KCD.String() {
			detects = append(detects, k)
		} else {
			extracts = append(extracts, k)
		}
	}
	est2, err := amdahl.SpeedUpGrouped([]amdahl.Group{extracts, detects})
	if err != nil {
		return nil, err
	}
	// Scenario 3 — extraction+detection pipelines per feature: each lane
	// is extract_i followed by its share of detection; groups become one
	// parallel group of lane pseudo-kernels. Detection work splits by
	// nominal operation share.
	detShare := map[marvel.KernelID]float64{
		marvel.KCH: detOpsShare(marvel.NumSVCH, marvel.DimCH),
		marvel.KCC: detOpsShare(marvel.NumSVCC, marvel.DimCC),
		marvel.KEH: detOpsShare(marvel.NumSVEH, marvel.DimEH),
		marvel.KTX: detOpsShare(marvel.NumSVTX, marvel.DimTX),
	}
	lane := amdahl.Group{}
	for _, id := range []marvel.KernelID{marvel.KCH, marvel.KCC, marvel.KEH, marvel.KTX} {
		frac := cov[id] + cov[marvel.KCD]*detShare[id]
		// Effective lane speed-up: lane original time / lane ported time.
		orig := cov[id] + cov[marvel.KCD]*detShare[id]
		ported := cov[id]/speed[id] + cov[marvel.KCD]*detShare[id]/speed[marvel.KCD]
		lane = append(lane, amdahl.Kernel{Name: id.String() + "+det", Fraction: frac, SpeedUp: orig / ported})
	}
	est3, err := amdahl.SpeedUpGrouped([]amdahl.Group{lane})
	if err != nil {
		return nil, err
	}

	// Measurements: per-image application speed-up over the PPE. The two
	// parallel-scenario runs are independent simulations, so they go
	// through the worker pool.
	scenarios := []struct {
		name string
		s    marvel.Scenario
		est  float64
	}{
		{"scenario1/single-SPE (Eq.2)", marvel.SingleSPE, est1},
		{"scenario2/multi-SPE (Eq.3)", marvel.MultiSPE, est2},
		{"scenario3/multi-SPE2 (Eq.3 lanes)", marvel.MultiSPE2, est3},
	}
	measured, err := RunIndexed(cfg.workers(), len(scenarios), func(i int) (float64, error) {
		if scenarios[i].s == marvel.SingleSPE {
			return ref.PerImage.Seconds() / single.PerImage.Seconds(), nil
		}
		ported, err := cfg.runPorted(fmt.Sprintf("eqns/%s/n=1", scenarios[i].s), cfg.ported(cfg.Workload(1), scenarios[i].s, marvel.Optimized))
		if err != nil {
			return 0, err
		}
		return ref.PerImage.Seconds() / ported.PerImage.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		m := measured[i]
		res.Scenarios = append(res.Scenarios, ScenarioCheck{
			Name:      sc.name,
			Estimate:  sc.est,
			Measured:  m,
			ErrorFrac: math.Abs(sc.est-m) / m,
		})
	}
	return res, nil
}

func detOpsShare(n, dim int) float64 {
	total := float64(marvel.NumSVCH)*(3*float64(marvel.DimCH)+25) +
		float64(marvel.NumSVCC)*(3*float64(marvel.DimCC)+25) +
		float64(marvel.NumSVEH)*(3*float64(marvel.DimEH)+25) +
		float64(marvel.NumSVTX)*(3*float64(marvel.DimTX)+25)
	return float64(n) * (3*float64(dim) + 25) / total
}

// RenderEqns prints the estimator validation.
func RenderEqns(w io.Writer, r *EqnsResult) {
	fmt.Fprintf(w, "§4.2 worked examples (Eq. 1, Kfr=10%%):\n")
	fmt.Fprintf(w, "  Kspeedup=10  -> Sapp = %.4f (paper 1.0989)\n", r.Eq1At10x)
	fmt.Fprintf(w, "  Kspeedup=100 -> Sapp = %.4f (paper 1.1098)\n", r.Eq1At100x)
	fmt.Fprintf(w, "\nEstimates (Eqs. 2-3 with measured kernel data) vs measured app\n")
	fmt.Fprintf(w, "speed-ups over the PPE, per image (paper reports <2%% error):\n")
	fmt.Fprintf(w, "  %-34s %9s %9s %7s\n", "scenario", "estimate", "measured", "error")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, "  %-34s %8.2fx %8.2fx %6.2f%%\n", s.Name, s.Estimate, s.Measured, s.ErrorFrac*100)
	}
}
