package experiments

import (
	"fmt"
	"io"
	"reflect"

	"cellport/internal/fault"
	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// FaultsResult reports the fault-injection experiment: a fault-free
// baseline against a supervised run under a deterministic fault plan,
// with the structured recovery record and the determinism cross-check.
type FaultsResult struct {
	Scenario string `json:"scenario"`
	// Spec is the canonical fault plan (Parse-able; reproduces the run).
	Spec string `json:"spec"`
	// Seed is the plan seed (0 when an explicit -faults spec was given).
	Seed uint64 `json:"seed"`
	// Baseline and Faulted are the runs' virtual times.
	Baseline sim.Duration `json:"baseline_fs"`
	Faulted  sim.Duration `json:"faulted_fs"`
	// Report is the faulted run's structured fault record.
	Report *fault.Report `json:"report"`
	// ValidationErrors counts output mismatches against the host
	// reference in the faulted run (the bit-exactness check).
	ValidationErrors int `json:"validation_errors"`
	// EventCount is the faulted run's replay fingerprint.
	EventCount uint64 `json:"event_count"`
	// Deterministic reports whether a repeat of the faulted run produced
	// an identical fault report and event count.
	Deterministic bool `json:"deterministic"`
}

// FaultsExp runs the robustness experiment: one fault-free baseline and
// two identical supervised runs under the configured fault plan (explicit
// -faults spec, else seeded from -faultseed). The three simulations are
// independent and fan out over the worker pool.
func FaultsExp(cfg Config) (*FaultsResult, error) {
	var plan *fault.Plan
	var err error
	res := &FaultsResult{Scenario: marvel.MultiSPE.String()}
	if cfg.FaultSpec != "" {
		if plan, err = fault.Parse(cfg.FaultSpec); err != nil {
			return nil, err
		}
	} else {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		plan = fault.Seeded(seed, MachineConfig().NumSPEs)
		res.Seed = seed
	}
	res.Spec = plan.String()

	w := cfg.Workload(2)
	runOne := func(label string, p *fault.Plan) (*marvel.PortedResult, error) {
		pc := cfg.ported(w, marvel.MultiSPE, marvel.Optimized)
		pc.Validate = true
		pc.Faults = p
		pc.Watchdog = cfg.Watchdog
		return cfg.runPorted(label, pc)
	}
	runs, err := RunWheels(cfg.workers(), 3, func(i int) (*marvel.PortedResult, error) {
		switch i {
		case 0:
			return runOne("faults/baseline", nil) // fault-free baseline
		case 1:
			return runOne("faults/injected", plan)
		default:
			return runOne("faults/repeat", plan)
		}
	})
	if err != nil {
		return nil, err
	}
	base, faulted, repeat := runs[0], runs[1], runs[2]
	res.Baseline = base.Total
	res.Faulted = faulted.Total
	res.Report = faulted.Faults
	res.ValidationErrors = faulted.ValidationErrors
	res.EventCount = faulted.EventCount
	res.Deterministic = faulted.EventCount == repeat.EventCount &&
		reflect.DeepEqual(faulted.Faults, repeat.Faults) &&
		reflect.DeepEqual(faulted.Images, repeat.Images)
	return res, nil
}

// RenderFaults prints the robustness experiment.
func RenderFaults(w io.Writer, r *FaultsResult) {
	fmt.Fprintf(w, "Fault injection & self-healing — %s scenario\n", r.Scenario)
	if r.Seed != 0 {
		fmt.Fprintf(w, "plan (seed %d): %s\n", r.Seed, r.Spec)
	} else {
		fmt.Fprintf(w, "plan: %s\n", r.Spec)
	}
	rep := r.Report
	fmt.Fprintf(w, "injected %d/%d planned faults\n", len(rep.Injected), rep.Planned)
	for _, ev := range rep.Injected {
		fmt.Fprintf(w, "  %-12s spe%-2d at %-16s %s\n", ev.Kind, ev.SPE, ev.At, ev.Detail)
	}
	fmt.Fprintf(w, "recovery: %d retries (%s backoff), %d watchdog timeouts, %d redispatches, %d PPE fallbacks (%s degraded)\n",
		rep.Retries, rep.BackoffTime, rep.WatchdogTimeouts, rep.Redispatches, rep.Fallbacks, rep.DegradedTime)
	if len(rep.SPEsLost) > 0 {
		fmt.Fprintf(w, "SPEs lost: %v\n", rep.SPEsLost)
	}
	over := 0.0
	if r.Baseline > 0 {
		over = (r.Faulted.Seconds() - r.Baseline.Seconds()) / r.Baseline.Seconds() * 100
	}
	fmt.Fprintf(w, "virtual time: baseline %s, faulted %s (+%.1f%%)\n", r.Baseline, r.Faulted, over)
	fmt.Fprintf(w, "outputs bit-exact vs host reference: %v (%d validation errors)\n",
		r.ValidationErrors == 0, r.ValidationErrors)
	fmt.Fprintf(w, "deterministic replay (same plan twice): %v (event count %d)\n",
		r.Deterministic, r.EventCount)
}
