package experiments

import (
	"fmt"
	"io"

	"cellport/internal/serve"
)

// FleetConfig sizes the fleet-scale serving experiment (paperbench
// -exp fleet). Zero values select the defaults noted on each field.
type FleetConfig struct {
	// Pools is the number of blade pools (default 4); each pool holds
	// the serve experiment's blade count.
	Pools int
	// Autoscale arms the virtual-time autoscaler (paperbench default:
	// on).
	Autoscale bool
	// Flash adds seeded flash-crowd windows on top of the diurnal
	// sinusoid (paperbench default: on).
	Flash bool
}

// FleetResult reports the fleet experiment: the routed, optionally
// autoscaled fleet against a static single-pool baseline consuming the
// byte-identical arrival stream (the offered rate is pinned in absolute
// terms so partitioning the capacity cannot change the stream).
type FleetResult struct {
	// Pools and BladesPerPool record the fleet shape that ran.
	Pools         int `json:"pools"`
	BladesPerPool int `json:"blades_per_pool"`

	Fleet  *serve.Report `json:"fleet"`
	Single *serve.Report `json:"single"`

	// Goodput is requests served on time. Ratio is fleet over single:
	// the capacity the router and pools unlock on the shared stream.
	GoodputFleet  int     `json:"goodput_fleet"`
	GoodputSingle int     `json:"goodput_single"`
	GoodputRatio  float64 `json:"goodput_ratio"`

	// Epochs counts epoch-barrier rounds over both runs. Excluded from
	// JSON so experiment data stays byte-identical across -shards,
	// -lookahead, and -seqsim.
	Epochs uint64 `json:"-"`
}

// FleetExp runs the fleet-scale serving experiment: Pools pools of
// blades behind the consistent-hash router (with estimator override)
// under a diurnal + flash-crowd stream, the autoscaler optionally
// draining pools through the lifecycle machinery off-peak — against a
// static single-pool run on the identical absolute-rate stream.
func FleetExp(cfg Config) (*FleetResult, error) {
	fc := cfg.Fleet
	if fc.Pools <= 0 {
		fc.Pools = 4
	}
	base, err := cfg.serveBase()
	if err != nil {
		return nil, err
	}
	if base.Cal, err = serve.Calibrate(base); err != nil {
		return nil, err
	}
	base.Policy = serve.PolicyEstimator
	base.Pools = fc.Pools
	load := &serve.RateModel{DiurnalAmp: 0.6}
	if fc.Flash {
		load.FlashCount = 2
		load.FlashFactor = 3
	}
	base.Load = load
	if fc.Autoscale {
		base.Autoscale = &serve.Autoscale{}
	}
	// Pin the offered rate in absolute terms at Rate× the whole fleet's
	// capacity: the single-pool baseline then consumes the byte-identical
	// stream instead of a stream rescaled to its smaller capacity.
	total := base.Blades * fc.Pools
	base.OfferedRPS = base.Rate * base.Cal.PerBladeCapacity() * float64(total)
	base.Rate = 0

	res := &FleetResult{Pools: fc.Pools, BladesPerPool: base.Blades}
	runOne := func(label string, c serve.Config) (*serve.Report, error) {
		rep, err := serve.Run(c)
		if err != nil {
			return nil, err
		}
		res.Epochs += rep.Epochs
		for _, bs := range rep.PerBlade {
			cfg.Collect.AddArtifacts(fmt.Sprintf("fleet/%s/blade%d", label, bs.Blade), bs.Trace, bs.Metrics)
		}
		if rep.Coordinator != nil || rep.Sim != nil {
			cfg.Collect.AddArtifacts(fmt.Sprintf("fleet/%s/sim", label), rep.Coordinator, rep.Sim)
		}
		return rep, nil
	}
	if res.Fleet, err = runOne("fleet", base); err != nil {
		return nil, err
	}
	single := base
	single.Pools = 0
	single.Autoscale = nil
	if res.Single, err = runOne("single", single); err != nil {
		return nil, err
	}

	res.GoodputFleet = res.Fleet.Served - res.Fleet.Late
	res.GoodputSingle = res.Single.Served - res.Single.Late
	if res.GoodputSingle > 0 {
		res.GoodputRatio = float64(res.GoodputFleet) / float64(res.GoodputSingle)
	}
	return res, nil
}

// RenderFleet prints the fleet experiment: the per-pool breakdown, the
// autoscaler's trajectory, and the fleet-vs-single-pool comparison.
func RenderFleet(w io.Writer, r *FleetResult) {
	f := r.Fleet
	fmt.Fprintf(w, "Fleet-scale serving — %d pools × %d blades, offered %.1f rps (%.1f× fleet capacity), deadline %s\n",
		r.Pools, r.BladesPerPool, f.OfferedRPS, f.RateMultiple, f.Deadline)
	if fs := f.Fleet; fs != nil {
		fmt.Fprintf(w, "autoscaler: %d scale-ups, %d scale-downs; active pools %d..%d (final %d); router overrides %d\n",
			fs.ScaleUps, fs.ScaleDowns, fs.ActiveMin, fs.Pools, fs.ActiveFinal, fs.RouterOverrides)
		fmt.Fprintf(w, "%-6s %7s %7s %7s %7s\n", "pool", "blades", "active", "routed", "served")
		for _, ps := range fs.PerPool {
			fmt.Fprintf(w, "%-6d %7d %7v %7d %7d\n", ps.Pool, ps.Blades, ps.Active, ps.Routed, ps.Served)
		}
	}
	fmt.Fprintf(w, "%-10s %7s %5s %9s %9s %9s %9s %10s %9s %9s %9s\n",
		"run", "served", "late", "shed-rej", "shed-exp", "shed-rer", "shed-exh", "shed-glob", "p50", "p95", "p99")
	for _, row := range []struct {
		name string
		rep  *serve.Report
	}{{"fleet", r.Fleet}, {"single", r.Single}} {
		rep := row.rep
		fmt.Fprintf(w, "%-10s %7d %5d %9d %9d %9d %9d %10d %9s %9s %9s\n",
			row.name, rep.Served, rep.Late, rep.ShedRejected, rep.ShedExpired,
			rep.ShedRerouted, rep.ShedExhausted, rep.ShedGlobal, rep.LatencyP50, rep.LatencyP95, rep.LatencyP99)
	}
	fmt.Fprintf(w, "ledger: served %d + rejected %d + expired %d + rerouted %d + exhausted %d + global %d = %d requests\n",
		f.Served, f.ShedRejected, f.ShedExpired, f.ShedRerouted, f.ShedExhausted, f.ShedGlobal, f.Requests)
	fmt.Fprintf(w, "goodput (served on time): fleet %d vs single pool %d (%.2f×)\n",
		r.GoodputFleet, r.GoodputSingle, r.GoodputRatio)
	if r.Epochs > 0 {
		fmt.Fprintf(w, "sync: %d epochs over both runs\n", r.Epochs)
	}
}
