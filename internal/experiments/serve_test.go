package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cellport/internal/marvel"
)

func serveTestConfig(parallel int) Config {
	return Config{
		Quick:     true,
		Seed:      20070710,
		Parallel:  parallel,
		Artifacts: marvel.NewArtifactCache(),
		Serve:     ServeConfig{Blades: 2, Seed: 7},
	}
}

// TestServeExpParallelDeterminism pins the acceptance criterion for the
// serving experiment: with a fixed seed the serialized result is
// byte-identical across repeated runs and across -parallel 1 vs N.
func TestServeExpParallelDeterminism(t *testing.T) {
	measure := func(parallel int) []byte {
		t.Helper()
		res, err := ServeExp(serveTestConfig(parallel))
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	seq := measure(1)
	if rerun := measure(1); !bytes.Equal(rerun, seq) {
		t.Fatalf("rerun diverged:\n got %s\nwant %s", rerun, seq)
	}
	if par := measure(8); !bytes.Equal(par, seq) {
		t.Fatalf("parallel=8 diverged from parallel=1:\n got %s\nwant %s", par, seq)
	}
}

// TestServeExpCollectsPerBlade checks the observability integration: an
// armed collector receives one labelled artifact per blade per policy,
// each carrying a trace recording and a metrics snapshot — so the Chrome
// export renders one process per blade.
func TestServeExpCollectsPerBlade(t *testing.T) {
	cfg := serveTestConfig(4)
	cfg.Collect = &Collector{}
	if _, err := ServeExp(cfg); err != nil {
		t.Fatal(err)
	}
	runs := cfg.Collect.Runs()
	want := 2 * (cfg.Serve.Blades + 1) // two policies × (blades + coordinator sim lane)
	if len(runs) != want {
		t.Fatalf("collected %d artifacts, want %d", len(runs), want)
	}
	simLanes := 0
	for _, r := range runs {
		if strings.HasSuffix(r.Label, "/sim") {
			// Coordinator artifact: epoch-barrier instants plus the sim.*
			// synchronization counters.
			simLanes++
			if r.Metrics == nil {
				t.Fatalf("artifact %q missing metrics", r.Label)
			}
			continue
		}
		if !strings.HasPrefix(r.Label, "serve/estimator/blade") && !strings.HasPrefix(r.Label, "serve/round-robin/blade") {
			t.Fatalf("unexpected label %q", r.Label)
		}
		if r.Trace == nil || r.Metrics == nil {
			t.Fatalf("artifact %q missing trace or metrics", r.Label)
		}
	}
	if simLanes != 2 {
		t.Fatalf("collected %d coordinator sim artifacts, want 2", simLanes)
	}
	var buf bytes.Buffer
	if err := cfg.Collect.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"serve/estimator/blade0", "serve/round-robin/blade1"} {
		if !strings.Contains(buf.String(), label) {
			t.Fatalf("Chrome trace missing process %q", label)
		}
	}
	var mbuf bytes.Buffer
	if err := cfg.Collect.WriteMetricsJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mbuf.String(), `"serve/estimator/blade0"`) {
		t.Fatalf("metrics JSON missing blade entry: %s", mbuf.String())
	}
}

// TestServeExpEpochReduction pins the acceptance criterion of the
// lookahead protocol on the -exp serve scenario itself: with lookahead
// (the default) the experiment pays at least 5× fewer epoch barriers
// than with per-arrival barriers, and the serialized results are
// byte-identical anyway.
func TestServeExpEpochReduction(t *testing.T) {
	run := func(noLookahead bool) ([]byte, uint64) {
		t.Helper()
		cfg := serveTestConfig(4)
		cfg.NoLookahead = noLookahead
		res, err := ServeExp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return doc, res.Epochs
	}
	laDoc, laEpochs := run(false)
	nolaDoc, nolaEpochs := run(true)
	if !bytes.Equal(laDoc, nolaDoc) {
		t.Fatalf("lookahead on/off diverged:\n got %s\nwant %s", laDoc, nolaDoc)
	}
	if laEpochs == 0 || nolaEpochs == 0 {
		t.Fatalf("epoch counters missing: lookahead %d, per-arrival %d", laEpochs, nolaEpochs)
	}
	if nolaEpochs < 5*laEpochs {
		t.Fatalf("epoch reduction below 5×: lookahead %d epochs vs per-arrival %d", laEpochs, nolaEpochs)
	}
}
