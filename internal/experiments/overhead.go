package experiments

import (
	"fmt"
	"io"

	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
	"cellport/internal/spe"
)

// Protocol-overhead ablation: §3.5's completion notification comes in two
// flavours — PPE polling on spe_stat_out_mbox (Listing 3) or the
// interrupting outbound mailbox. The paper implements both ("the main
// function enables both blocking and non-blocking behavior") without
// measuring the difference. This experiment times an empty kernel
// invocation round trip under each mode across polling periods, isolating
// the pure signalling cost that bounds how small a kernel is worth
// offloading (§3.2's "large enough to provide some meaningful
// computation").

// OverheadRow is one protocol configuration measurement.
type OverheadRow struct {
	Mode         core.CompletionMode
	PollInterval sim.Duration // meaningful for Polling only
	RoundTrip    sim.Duration // empty-kernel invocation, averaged
}

// kernelWork is the fixed SPU compute per invocation: long enough that
// completion lands between polls (making the quantization visible), short
// enough to stay signalling-dominated.
const kernelWork = 16000 // cycles = 5 us at 3.2 GHz

// Overhead measures small-kernel invocation round trips.
func Overhead(cfg Config) ([]OverheadRow, error) {
	const calls = 64
	measure := func(mode core.CompletionMode, poll sim.Duration) (sim.Duration, error) {
		mcfg := cell.DefaultConfig()
		mcfg.MemorySize = 16 << 20
		if poll > 0 {
			mcfg.PollInterval = poll
		}
		m := cell.New(mcfg)
		spec := core.KernelSpec{
			Name:      "noop",
			CodeBytes: 2048,
			Mode:      mode,
			Functions: map[core.Opcode]core.KernelFunc{
				1: func(ctx *spe.Context, _ mainmem.Addr) uint32 {
					ctx.ComputeCycles(kernelWork, "stub-work")
					return 0
				},
			},
		}
		var total sim.Duration
		var innerErr error
		_, err := m.RunMain("overhead", func(ctx *cell.Context) {
			iface, err := core.Open(ctx, 0, spec)
			if err != nil {
				innerErr = err
				return
			}
			start := ctx.Now()
			for i := 0; i < calls; i++ {
				if _, err := iface.SendAndWait(1, 0); err != nil {
					innerErr = err
					return
				}
			}
			total = ctx.Now().Sub(start)
			innerErr = iface.Close()
		})
		if err != nil {
			return 0, err
		}
		if innerErr != nil {
			return 0, innerErr
		}
		return total / calls, nil
	}

	var rows []OverheadRow
	for _, poll := range []sim.Duration{100 * sim.Nanosecond, 250 * sim.Nanosecond, sim.Microsecond, 4 * sim.Microsecond} {
		rt, err := measure(core.Polling, poll)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverheadRow{Mode: core.Polling, PollInterval: poll, RoundTrip: rt})
	}
	rt, err := measure(core.Interrupt, 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, OverheadRow{Mode: core.Interrupt, RoundTrip: rt})
	return rows, nil
}

// RenderOverhead prints the ablation table.
func RenderOverhead(w io.Writer, rows []OverheadRow) {
	fmt.Fprintf(w, "Ablation — §3.5 completion-notification cost (5 us kernel round trip)\n\n")
	fmt.Fprintf(w, "%-10s %14s %12s\n", "mode", "poll interval", "round trip")
	for _, r := range rows {
		iv := "-"
		if r.Mode == core.Polling {
			iv = r.PollInterval.String()
		}
		fmt.Fprintf(w, "%-10s %14s %12s\n", r.Mode, iv, r.RoundTrip)
	}
	fmt.Fprintf(w, "\nThe round trip bounds the minimum worthwhile kernel size: work\n")
	fmt.Fprintf(w, "below ~10x this cost is better left on the PPE (§3.2).\n")
}
