// Package experiments regenerates every quantitative artifact of the
// paper's evaluation (§4.2 worked examples, §5.2 profile, §5.3 naive
// ports, Table 1, Figure 6, Figure 7) from the simulated machine and the
// MARVEL port, and renders paper-vs-measured comparisons.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// Config sizes the experiment runs.
type Config struct {
	// Quick shrinks frames and image sets for fast test runs; the full
	// configuration uses the paper's 352×240 frames and 1/10/50 sets.
	Quick bool
	Seed  uint64
	// Parallel bounds the worker pool used for independent simulation
	// runs: 0 (the default) means GOMAXPROCS, 1 forces the sequential
	// path. Virtual-time results are identical at any setting; only host
	// wall time changes.
	Parallel int
	// NoCache forces every run to recompute its workload artifacts
	// (images, model sets, reference runs) instead of sharing them through
	// the process-wide cache — the paperbench -nocache calibration path.
	NoCache bool
	// Artifacts, when non-nil, overrides the artifact cache used by all
	// runs of this configuration (takes precedence over NoCache).
	Artifacts *marvel.ArtifactCache
	// FaultSpec is an explicit fault plan for the faults experiment
	// (fault.Parse grammar). Empty selects a seeded plan.
	FaultSpec string
	// FaultSeed seeds the derived fault plan when FaultSpec is empty
	// (0 selects seed 1).
	FaultSeed uint64
	// Watchdog overrides the supervision watchdog timeout in every
	// fault-armed run (paperbench -watchdog; 0 keeps the default).
	Watchdog sim.Duration
	// Collect, when non-nil, arms per-run observability: every ported run
	// gets a private trace recorder and metrics registry, and its
	// artifacts are gathered under a run label (see Collector). Nil keeps
	// every run on its exact uninstrumented path.
	Collect *Collector
	// Serve sizes the serving-layer experiment (-exp serve).
	Serve ServeConfig
	// Race sizes the estimator-race experiment (-exp race): the same
	// calibration points the serving layer measures, each also executed
	// for real on the work-stealing backend.
	Race RaceConfig
	// Fleet sizes the fleet-scale serving experiment (-exp fleet); the
	// per-pool blade count and stream come from Serve.
	Fleet FleetConfig
	// Shards bounds the workers driving the serve experiment's per-blade
	// event wheels (0 = GOMAXPROCS). Never affects results.
	Shards int
	// SeqSim runs the serve experiment on the sequential reference loop
	// instead of the sharded wheels (the determinism oracle).
	SeqSim bool
	// NoLookahead restores the per-arrival-instant epoch barrier schedule
	// in the sharded serve run (serve.Config.NoLookahead). Reports are
	// byte-identical either way; only the epoch count changes.
	NoLookahead bool
	// FullSim re-runs the full machine simulation behind every serve
	// dispatch and fails on any divergence from the calibration table
	// (serve.Config.FullFidelity).
	FullSim bool
}

// artifacts resolves the cache for this configuration's runs: an explicit
// instance wins, NoCache yields nil (compute privately), default is the
// process-wide shared cache.
func (c Config) artifacts() *marvel.ArtifactCache {
	if c.Artifacts != nil {
		return c.Artifacts
	}
	if c.NoCache {
		return nil
	}
	return marvel.SharedArtifacts()
}

// ported builds a PortedConfig carrying this configuration's machine and
// cache policy, so every experiment's RunPorted call shares artifacts the
// same way.
func (c Config) ported(w marvel.Workload, s marvel.Scenario, v marvel.Variant) marvel.PortedConfig {
	return marvel.PortedConfig{
		Workload:      w,
		Scenario:      s,
		Variant:       v,
		MachineConfig: MachineConfig(),
		Artifacts:     c.Artifacts,
		NoCache:       c.NoCache,
	}
}

// DefaultConfig is the paper-faithful configuration.
func DefaultConfig() Config { return Config{Seed: 20070710} }

// Workload sizes an n-image run under this configuration. It is the
// single source of frame geometry for experiments and benchmarks.
func (c Config) Workload(n int) marvel.Workload {
	if c.Quick {
		return marvel.Workload{Images: n, W: 352, H: 96, Seed: c.Seed}
	}
	return marvel.Workload{Images: n, W: 352, H: 240, Seed: c.Seed}
}

func (c Config) setSizes() []int {
	if c.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 10, 50}
}

// MachineConfig returns a machine sized for the experiments (and for the
// benchmark harness, which shares it).
func MachineConfig() *cell.Config {
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 64 << 20
	return &cfg
}

// PaperTable1 holds the published Table 1 values.
var PaperTable1 = map[marvel.KernelID]struct {
	SpeedUp  float64
	Coverage float64
}{
	marvel.KCH: {53.67, 0.08},
	marvel.KCC: {52.23, 0.54},
	marvel.KTX: {15.99, 0.06},
	marvel.KEH: {65.94, 0.28},
	marvel.KCD: {10.80, 0.02},
}

// PaperNaive holds the §5.3 pre-optimization speed-ups (only three were
// measured).
var PaperNaive = map[marvel.KernelID]float64{
	marvel.KCH: 26.41,
	marvel.KCC: 0.43,
	marvel.KEH: 3.85,
}

// Table1Row is one row of the regenerated Table 1.
type Table1Row struct {
	Kernel        marvel.KernelID
	PPETime       sim.Duration
	SPETime       sim.Duration
	SpeedUp       float64
	Coverage      float64
	PaperSpeedUp  float64
	PaperCoverage float64
}

// kernelRoundTrips measures per-kernel PPE and SPE times for one variant:
// the reference run gives PPE kernel times; a SingleSPE ported run gives
// non-overlapping SPE round-trip times. The two simulations are
// independent, so they run through the worker pool.
func kernelRoundTrips(cfg Config, v marvel.Variant) (*marvel.ReferenceResult, *marvel.PortedResult, error) {
	w := cfg.Workload(1)
	var ref *marvel.ReferenceResult
	var ported *marvel.PortedResult
	_, err := RunIndexed(cfg.workers(), 2, func(i int) (struct{}, error) {
		if i == 0 {
			r, err := cfg.artifacts().Reference(cost.NewPPE(), w)
			ref = r
			return struct{}{}, err
		}
		p, err := cfg.runPorted(fmt.Sprintf("kernels/%s/single-spe", v), cfg.ported(w, marvel.SingleSPE, v))
		ported = p
		return struct{}{}, err
	})
	if err != nil {
		return nil, nil, err
	}
	return ref, ported, nil
}

// Table1 regenerates Table 1: optimized SPE-vs-PPE kernel speed-ups with
// per-kernel coverage.
func Table1(cfg Config) ([]Table1Row, error) {
	ref, ported, err := kernelRoundTrips(cfg, marvel.Optimized)
	if err != nil {
		return nil, err
	}
	cov := ref.KernelCoverage()
	var rows []Table1Row
	for _, id := range marvel.KernelIDs {
		p := PaperTable1[id]
		rows = append(rows, Table1Row{
			Kernel:        id,
			PPETime:       ref.KernelTime[id],
			SPETime:       ported.KernelTime[id],
			SpeedUp:       ref.KernelTime[id].Seconds() / ported.KernelTime[id].Seconds(),
			Coverage:      cov[id],
			PaperSpeedUp:  p.SpeedUp,
			PaperCoverage: p.Coverage,
		})
	}
	return rows, nil
}

// RenderTable1 prints the comparison table.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1 — SPE vs PPE kernel speed-ups (optimized kernels)\n")
	fmt.Fprintf(w, "%-12s %12s %12s %9s %9s %10s %10s\n",
		"Kernel", "PPE time", "SPE time", "Speed-up", "(paper)", "Coverage", "(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12s %12s %9.2f %9.2f %9.1f%% %9.0f%%\n",
			r.Kernel, r.PPETime, r.SPETime, r.SpeedUp, r.PaperSpeedUp,
			r.Coverage*100, r.PaperCoverage*100)
	}
}

// NaiveRow is one §5.3 pre-optimization measurement.
type NaiveRow struct {
	Kernel       marvel.KernelID
	SpeedUp      float64
	PaperSpeedUp float64 // 0 when the paper did not measure it
}

// NaiveSpeedups regenerates the §5.3 before-optimization numbers.
func NaiveSpeedups(cfg Config) ([]NaiveRow, error) {
	ref, ported, err := kernelRoundTrips(cfg, marvel.Naive)
	if err != nil {
		return nil, err
	}
	var rows []NaiveRow
	for _, id := range marvel.KernelIDs {
		rows = append(rows, NaiveRow{
			Kernel:       id,
			SpeedUp:      ref.KernelTime[id].Seconds() / ported.KernelTime[id].Seconds(),
			PaperSpeedUp: PaperNaive[id],
		})
	}
	return rows, nil
}

// RenderNaive prints the naive-port comparison.
func RenderNaive(w io.Writer, rows []NaiveRow) {
	fmt.Fprintf(w, "§5.3 — kernel speed-ups before SPE-specific optimization\n")
	fmt.Fprintf(w, "%-12s %9s %9s\n", "Kernel", "Speed-up", "(paper)")
	for _, r := range rows {
		paper := "n/a"
		if r.PaperSpeedUp > 0 {
			paper = fmt.Sprintf("%9.2f", r.PaperSpeedUp)
		}
		fmt.Fprintf(w, "%-12s %9.2f %9s\n", r.Kernel, r.SpeedUp, paper)
	}
}

// Fig6Row holds one kernel's execution time on the four targets.
type Fig6Row struct {
	Kernel                     marvel.KernelID
	Laptop, Desktop, PPE, SPE  sim.Duration
	LaptopS, DesktopS, SPEvPPE float64 // speed ratios vs PPE for the log plot
}

// Fig6 regenerates Figure 6: per-kernel execution times on the Laptop,
// the Desktop, the PPE and the (optimized) SPE, log scale.
func Fig6(cfg Config) ([]Fig6Row, error) {
	w := cfg.Workload(1)
	hosts := []func() *cost.Model{cost.NewLaptop, cost.NewDesktop}
	refs, err := RunIndexed(cfg.workers(), len(hosts), func(i int) (*marvel.ReferenceResult, error) {
		return cfg.artifacts().Reference(hosts[i](), w)
	})
	if err != nil {
		return nil, err
	}
	lap, desk := refs[0], refs[1]
	ref, ported, err := kernelRoundTrips(cfg, marvel.Optimized)
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for _, id := range marvel.KernelIDs {
		r := Fig6Row{
			Kernel:  id,
			Laptop:  lap.KernelTime[id],
			Desktop: desk.KernelTime[id],
			PPE:     ref.KernelTime[id],
			SPE:     ported.KernelTime[id],
		}
		r.LaptopS = r.PPE.Seconds() / r.Laptop.Seconds()
		r.DesktopS = r.PPE.Seconds() / r.Desktop.Seconds()
		r.SPEvPPE = r.PPE.Seconds() / r.SPE.Seconds()
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderFig6 prints the series with a log-scale ASCII bar per target.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6 — kernel execution times (log scale)\n")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "Kernel", "Laptop", "Desktop", "PPE", "SPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", r.Kernel, r.Laptop, r.Desktop, r.PPE, r.SPE)
	}
	fmt.Fprintln(w, "\nlog-scale bars (each █ is ×2 above 1µs):")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s\n", r.Kernel)
		for _, t := range []struct {
			name string
			d    sim.Duration
		}{{"Laptop", r.Laptop}, {"Desktop", r.Desktop}, {"PPE", r.PPE}, {"SPE", r.SPE}} {
			fmt.Fprintf(w, "  %-8s |%s %s\n", t.name, logBar(t.d), t.d)
		}
	}
}

func logBar(d sim.Duration) string {
	us := d.Microseconds()
	n := 0
	for v := us; v > 1 && n < 60; v /= 2 {
		n++
	}
	return strings.Repeat("█", n)
}
