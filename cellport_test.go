package cellport_test

import (
	"math"
	"testing"

	"cellport"
)

// TestFacadeEndToEnd ports a toy kernel through the public API only: a
// saturating brightness adjustment over a byte buffer, DMA'd in and out.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := cellport.DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := cellport.NewMachine(cfg)

	const n = 4096
	spec := cellport.KernelSpec{
		Name:      "brighten",
		CodeBytes: 8 * 1024,
		Functions: map[cellport.Opcode]cellport.KernelFunc{
			1: func(ctx *cellport.SPEContext, wrapper cellport.Addr) uint32 {
				buf := ctx.Store().MustAlloc(n, 16)
				if err := ctx.Get(buf, wrapper, n, 0); err != nil {
					return 1
				}
				ctx.WaitTag(0)
				b := ctx.Store().Bytes(buf, n)
				for i := range b {
					v := int(b[i]) + 40
					if v > 255 {
						v = 255
					}
					b[i] = byte(v)
				}
				ctx.ComputeSIMD(n, 8, 0.9, "brighten")
				if err := ctx.Put(buf, wrapper, n, 1); err != nil {
					return 1
				}
				ctx.WaitTag(1)
				return 0
			},
		},
	}

	var out []byte
	elapsed, err := m.RunMain("facade", func(ctx *cellport.PPEContext) {
		w, err := cellport.NewWrapper(ctx.Memory(), cellport.WrapperField{Name: "data", Size: n})
		if err != nil {
			t.Error(err)
			return
		}
		data := w.Bytes("data")
		for i := range data {
			data[i] = byte(i)
		}
		iface, err := cellport.Open(ctx, 0, spec)
		if err != nil {
			t.Error(err)
			return
		}
		if res, err := iface.SendAndWait(1, w.Addr()); err != nil || res != 0 {
			t.Errorf("kernel failed: res=%d err=%v", res, err)
			return
		}
		out = append(out, w.Bytes("data")...)
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time consumed")
	}
	for i, v := range out {
		want := int(byte(i)) + 40
		if want > 255 {
			want = 255
		}
		if int(v) != want {
			t.Fatalf("byte %d = %d, want %d", i, v, want)
		}
	}
}

func TestFacadeEstimator(t *testing.T) {
	s, err := cellport.EstimateSpeedUp1(cellport.EstKernel{Name: "k", Fraction: 0.10, SpeedUp: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.0989) > 0.0001 {
		t.Fatalf("Eq.1 = %v", s)
	}
	seq, err := cellport.EstimateSequential([]cellport.EstKernel{
		{Name: "a", Fraction: 0.5, SpeedUp: 50},
		{Name: "b", Fraction: 0.3, SpeedUp: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := cellport.EstimateGrouped([]cellport.EstGroup{{
		{Name: "a", Fraction: 0.5, SpeedUp: 50},
		{Name: "b", Fraction: 0.3, SpeedUp: 60},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if grp < seq {
		t.Fatalf("grouped %v < sequential %v", grp, seq)
	}
}

func TestFacadeCostModels(t *testing.T) {
	ppe, spe := cellport.NewPPEModel(), cellport.NewSPEModel()
	desk, lap := cellport.NewDesktopModel(), cellport.NewLaptopModel()
	if ppe.Name != "PPE" || spe.Name != "SPE" || desk.Name != "Desktop" || lap.Name != "Laptop" {
		t.Fatal("model names wrong")
	}
	if d := ppe.ScalarOps(1.6e9); d != cellport.Second {
		t.Fatalf("PPE 1.6G ops = %v, want 1s", d)
	}
}

func TestFacadeTracer(t *testing.T) {
	cfg := cellport.DefaultConfig()
	cfg.MemorySize = 16 << 20
	rec := cellport.NewTraceRecorder()
	cfg.Tracer = rec
	m := cellport.NewMachine(cfg)
	if _, err := m.RunMain("traced", func(ctx *cellport.PPEContext) {
		ctx.ComputeScalar(1e6, "work")
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans()) == 0 {
		t.Fatal("no spans recorded through the façade")
	}
}
