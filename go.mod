module cellport

go 1.22
