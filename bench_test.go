package cellport_test

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation, plus ablations for the §4.1 optimizations. Reported
// "ns/op" is host wall time; the quantity that reproduces the paper is
// the virtual time, exported through the vtime_us/op and speedup metrics.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable1 -benchtime=1x

import (
	"sync"
	"testing"

	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/experiments"
	"cellport/internal/marvel"
	"cellport/internal/serve"
)

// benchCfg shares the experiment package's workload sizing (Quick frames
// keep benches fast while preserving full-width DMA rows).
var benchCfg = experiments.Config{Quick: true, Seed: 13}

func benchWorkload(n int) marvel.Workload { return benchCfg.Workload(n) }

func benchMachine() *cell.Config { return experiments.MachineConfig() }

// --- Table 1: per-kernel PPE vs optimized SPE ---------------------------

// BenchmarkTable1Kernels runs the SingleSPE ported application once per
// iteration and reports each kernel's virtual round-trip time and its
// speed-up over the PPE reference as custom metrics.
func BenchmarkTable1Kernels(b *testing.B) {
	w := benchWorkload(1)
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ref := marvel.RunReference(cost.NewPPE(), w, ms)
	var ported *marvel.PortedResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ported, err = marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      marvel.SingleSPE,
			Variant:       marvel.Optimized,
			MachineConfig: benchMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, id := range marvel.KernelIDs {
		b.ReportMetric(ported.KernelTime[id].Microseconds(), id.String()+"_vtime_us")
		b.ReportMetric(ref.KernelTime[id].Seconds()/ported.KernelTime[id].Seconds(),
			id.String()+"_speedup")
	}
}

// Per-kernel benchmarks (PPE reference side), one per Table 1 row.
func benchKernelPPE(b *testing.B, id marvel.KernelID) {
	w := benchWorkload(1)
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		b.Fatal(err)
	}
	var ref *marvel.ReferenceResult
	for i := 0; i < b.N; i++ {
		ref = marvel.RunReference(cost.NewPPE(), w, ms)
	}
	b.ReportMetric(ref.KernelTime[id].Microseconds(), "vtime_us")
}

func BenchmarkTable1PPE_CHExtract(b *testing.B)  { benchKernelPPE(b, marvel.KCH) }
func BenchmarkTable1PPE_CCExtract(b *testing.B)  { benchKernelPPE(b, marvel.KCC) }
func BenchmarkTable1PPE_TXExtract(b *testing.B)  { benchKernelPPE(b, marvel.KTX) }
func BenchmarkTable1PPE_EHExtract(b *testing.B)  { benchKernelPPE(b, marvel.KEH) }
func BenchmarkTable1PPE_ConceptDet(b *testing.B) { benchKernelPPE(b, marvel.KCD) }

// --- §5.3: naive kernel variants ----------------------------------------

func BenchmarkNaiveKernels(b *testing.B) {
	w := benchWorkload(1)
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ref := marvel.RunReference(cost.NewPPE(), w, ms)
	var ported *marvel.PortedResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ported, err = marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      marvel.SingleSPE,
			Variant:       marvel.Naive,
			MachineConfig: benchMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, id := range marvel.KernelIDs {
		b.ReportMetric(ref.KernelTime[id].Seconds()/ported.KernelTime[id].Seconds(),
			id.String()+"_speedup")
	}
}

// --- Figure 6: kernel times per target ------------------------------------

func benchHostKernels(b *testing.B, model *cost.Model) {
	w := benchWorkload(1)
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		b.Fatal(err)
	}
	var ref *marvel.ReferenceResult
	for i := 0; i < b.N; i++ {
		ref = marvel.RunReference(model, w, ms)
	}
	for _, id := range marvel.KernelIDs {
		b.ReportMetric(ref.KernelTime[id].Microseconds(), id.String()+"_vtime_us")
	}
}

func BenchmarkFig6Laptop(b *testing.B)  { benchHostKernels(b, cost.NewLaptop()) }
func BenchmarkFig6Desktop(b *testing.B) { benchHostKernels(b, cost.NewDesktop()) }
func BenchmarkFig6PPE(b *testing.B)     { benchHostKernels(b, cost.NewPPE()) }
func BenchmarkFig6SPE(b *testing.B)     { BenchmarkTable1Kernels(b) }

// --- Figure 7: application scenarios ---------------------------------------

// benchScenario measures wall throughput with b.RunParallel: every
// iteration is an independent simulation with a private engine, and the
// virtual-time metrics are deterministic, so they are computed once
// upfront and only the run itself is timed across goroutines.
func benchScenario(b *testing.B, scen marvel.Scenario, images int) {
	w := benchWorkload(images)
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		b.Fatal(err)
	}
	ref := marvel.RunReference(cost.NewDesktop(), w, ms)
	pc := marvel.PortedConfig{
		Workload:      w,
		Scenario:      scen,
		Variant:       marvel.Optimized,
		MachineConfig: benchMachine(),
	}
	ported, err := marvel.RunPorted(pc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := marvel.RunPorted(pc); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(ported.PerImage.Microseconds(), "vtime_us_per_image")
	b.ReportMetric(ref.PerImage.Seconds()/ported.PerImage.Seconds(), "speedup_vs_desktop")
}

// benchFig7Grid runs the whole Figure 7 experiment (3 hosts + 3 scenarios
// × set sizes) through the experiment harness. Comparing Seq vs Parallel
// on a multicore host shows the wall-time win of the worker pool;
// comparing either against NoCache shows the artifact cache's win (the
// three host reference runs amortize). Virtual-time results are identical
// across all of them.
func benchFig7Grid(b *testing.B, cfg experiments.Config) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func withParallel(cfg experiments.Config, workers int) experiments.Config {
	cfg.Parallel = workers
	return cfg
}

func withNoCache(cfg experiments.Config) experiments.Config {
	cfg.NoCache = true
	return cfg
}

func BenchmarkFig7GridSeq(b *testing.B)      { benchFig7Grid(b, withParallel(benchCfg, 1)) }
func BenchmarkFig7GridParallel(b *testing.B) { benchFig7Grid(b, withParallel(benchCfg, 0)) }
func BenchmarkFig7GridNoCache(b *testing.B) {
	benchFig7Grid(b, withNoCache(withParallel(benchCfg, 1)))
}

// --- multi-point sweep: artifact cache on vs off ---------------------------

// benchSweepGrid is the tentpole's acceptance benchmark: a Fig7-style
// grid of scenarios × kernel variants × set sizes with validation on, so
// every point checks its outputs against the sequential reference — the
// "application functional at all times" workflow of an iterative porting
// sweep. Cached, each (workload, host) reference — and the image set and
// model set under it — is computed once and shared across the RunIndexed
// workers and across sweeps (the process-lifetime behavior paperbench
// gets by default); NoCache recomputes them at every point. One warm-up
// sweep runs before the timer in both variants, so Cached measures the
// steady state. Outputs are byte-identical either way
// (TestPortedCacheOnOffIdentical).
func benchSweepGrid(b *testing.B, nocache bool) {
	type point struct {
		scen marvel.Scenario
		v    marvel.Variant
		n    int
	}
	var grid []point
	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		for _, v := range []marvel.Variant{marvel.Naive, marvel.Optimized} {
			for _, n := range []int{1, 2, 4} {
				grid = append(grid, point{scen, v, n})
			}
		}
	}
	arts := marvel.NewArtifactCache()
	sweep := func() error {
		_, err := experiments.RunIndexed(0, len(grid), func(j int) (*marvel.PortedResult, error) {
			g := grid[j]
			pc := marvel.PortedConfig{
				Workload:      benchWorkload(g.n),
				Scenario:      g.scen,
				Variant:       g.v,
				Validate:      true,
				MachineConfig: benchMachine(),
			}
			if nocache {
				pc.NoCache = true
			} else {
				pc.Artifacts = arts
			}
			return marvel.RunPorted(pc)
		})
		return err
	}
	if err := sweep(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepGridCached(b *testing.B)  { benchSweepGrid(b, false) }
func BenchmarkSweepGridNoCache(b *testing.B) { benchSweepGrid(b, true) }

func BenchmarkFig7SingleSPE1(b *testing.B)  { benchScenario(b, marvel.SingleSPE, 1) }
func BenchmarkFig7SingleSPE4(b *testing.B)  { benchScenario(b, marvel.SingleSPE, 4) }
func BenchmarkFig7MultiSPE1(b *testing.B)   { benchScenario(b, marvel.MultiSPE, 1) }
func BenchmarkFig7MultiSPE4(b *testing.B)   { benchScenario(b, marvel.MultiSPE, 4) }
func BenchmarkFig7MultiSPE2_1(b *testing.B) { benchScenario(b, marvel.MultiSPE2, 1) }
func BenchmarkFig7MultiSPE2_4(b *testing.B) { benchScenario(b, marvel.MultiSPE2, 4) }

// --- §4.2: estimator -------------------------------------------------------

func BenchmarkEqnsEstimator(b *testing.B) {
	cfg := experiments.Config{Quick: true, Seed: 13}
	var res *experiments.EqnsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Eqns(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Scenarios {
		b.ReportMetric(s.ErrorFrac*100, "estimate_error_pct")
	}
}

// --- ablations of the §4.1 optimizations -----------------------------------

// BenchmarkAblationBuffering isolates DMA multibuffering by comparing the
// naive and optimized correlogram kernels (the optimized kernel also
// SIMDizes, so the compute-side calibration dominates; the DMA overlap
// shows in the vtime delta of the CH kernel, whose naive variant is
// already SIMDized).
func BenchmarkAblationBuffering(b *testing.B) {
	w := benchWorkload(1)
	run := func(v marvel.Variant) *marvel.PortedResult {
		res, err := marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      marvel.SingleSPE,
			Variant:       v,
			MachineConfig: benchMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var naive, opt *marvel.PortedResult
	for i := 0; i < b.N; i++ {
		naive, opt = run(marvel.Naive), run(marvel.Optimized)
	}
	b.ReportMetric(naive.KernelTime[marvel.KCH].Microseconds(), "CH_naive_vtime_us")
	b.ReportMetric(opt.KernelTime[marvel.KCH].Microseconds(), "CH_opt_vtime_us")
}

// BenchmarkAblationPollVsInterrupt compares the two completion paths of
// the §3.5 protocol on an empty kernel (pure signalling cost).
func BenchmarkAblationPollVsInterrupt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
	// The comparison itself is in internal/core tests; here we simply run
	// both modes through the machine once and report virtual costs.
	b.Skip("see TestSendAndWaitBothModes in internal/core; modes differ only in PPE poll quantization")
}

// --- extension: data-parallel extraction scaling ----------------------------

func benchDataParallel(b *testing.B, id marvel.KernelID, n int) {
	w := benchWorkload(1)
	res, err := marvel.RunDataParallelExtraction(id, n, w, marvel.Optimized, benchMachine())
	if err != nil {
		b.Fatal(err)
	}
	if !res.Matches {
		b.Fatal("merged feature differs from reference")
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := marvel.RunDataParallelExtraction(id, n, w, marvel.Optimized, benchMachine()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(res.Time.Microseconds(), "vtime_us")
}

func BenchmarkScalingCC1(b *testing.B) { benchDataParallel(b, marvel.KCC, 1) }
func BenchmarkScalingCC2(b *testing.B) { benchDataParallel(b, marvel.KCC, 2) }
func BenchmarkScalingCC4(b *testing.B) { benchDataParallel(b, marvel.KCC, 4) }
func BenchmarkScalingCC8(b *testing.B) { benchDataParallel(b, marvel.KCC, 8) }
func BenchmarkScalingEH8(b *testing.B) { benchDataParallel(b, marvel.KEH, 8) }

// --- sharded serving engine --------------------------------------------------

// benchServeConfig is the sharded engine's acceptance scenario: a
// 16-blade pool in verified-dispatch mode (every dispatch re-runs the
// full machine simulation nested in its blade's wheel), bursty arrivals
// so whole blade-fulls of work land on one barrier, and no deadlines so
// nothing is shed. The only difference between the Seq and Sharded
// benchmarks is the engine driving the blades; their reports are
// byte-identical (TestShardedMatchesSequentialLoop and friends).
func benchServeConfig() serve.Config {
	return serve.Config{
		Blades:       16,
		MaxQueue:     8,
		MaxBatch:     3,
		Requests:     64,
		Rate:         2,
		Burst:        16,
		TallFrac:     0,
		Deadline:     -1,
		Seed:         7,
		Frame:        marvel.Workload{W: 352, H: 96, Seed: 13},
		Variant:      marvel.Optimized,
		FullFidelity: true,
		Artifacts:    benchServeArts,
	}
}

var benchServeArts = marvel.NewArtifactCache()

// benchServeCal memoizes the calibration so the benchmarks time only the
// serving run itself (calibration parallelism is already covered by the
// Fig7 benchmarks).
var benchServeCal = sync.OnceValues(func() (*serve.Calibration, error) {
	return serve.Calibrate(benchServeConfig())
})

func benchServe(b *testing.B, seqsim, noLookahead bool) {
	cal, err := benchServeCal()
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchServeConfig()
	cfg.Cal = cal
	cfg.SeqSim = seqsim
	cfg.NoLookahead = noLookahead
	b.ResetTimer()
	var rep *serve.Report
	for i := 0; i < b.N; i++ {
		if rep, err = serve.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Served), "served")
	if !seqsim {
		b.ReportMetric(float64(rep.Epochs), "epochs")
	}
}

// BenchmarkServeSeq is the sequential reference loop with inline
// verified dispatch — the single-core baseline.
func BenchmarkServeSeq(b *testing.B) { benchServe(b, true, false) }

// BenchmarkServeSharded is the same run on per-blade event wheels
// (workers = GOMAXPROCS) under the conservative lookahead coordinator.
// On a multicore host the nested dispatch simulations spread across the
// wheels; target is ≥2× over BenchmarkServeSeq at GOMAXPROCS ≥ 4, and
// fewer epochs than BenchmarkServeBarrierPerArrival (the epochs metric).
func BenchmarkServeSharded(b *testing.B) { benchServe(b, false, false) }

// BenchmarkServeBarrierPerArrival is the sharded run with lookahead
// disabled — an epoch barrier at every distinct arrival instant. The gap
// to BenchmarkServeSharded is the synchronization cost the lookahead
// protocol removes; the reports are byte-identical.
func BenchmarkServeBarrierPerArrival(b *testing.B) { benchServe(b, false, true) }

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkSimulatorEventThroughput(b *testing.B) {
	// How many simulated mailbox round trips per wall second the DES
	// engine sustains (harness overhead, not a paper number).
	w := benchWorkload(1)
	var err error
	for i := 0; i < b.N; i++ {
		_, err = marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      marvel.MultiSPE,
			Variant:       marvel.Optimized,
			MachineConfig: benchMachine(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
