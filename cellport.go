package cellport

import (
	"cellport/internal/amdahl"
	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/cost"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
	"cellport/internal/spe"
	"cellport/internal/trace"
)

// --- machine ------------------------------------------------------------

// Machine is a simulated Cell Broadband Engine.
type Machine = cell.Machine

// Config describes a machine instance (core counts, memory size, bus and
// MFC parameters, cost models, tracer).
type Config = cell.Config

// PPEContext is the PPE-side execution environment handed to the main
// application.
type PPEContext = cell.Context

// SPEContext is the execution environment handed to an SPE program.
type SPEContext = spe.Context

// Program is a raw SPE executable (use KernelSpec + BuildProgram for the
// dispatcher template).
type Program = spe.Program

// DefaultConfig returns a standard 8-SPE, 256 MB machine with the
// published Cell clock and bandwidth figures.
func DefaultConfig() Config { return cell.DefaultConfig() }

// NewMachine builds a machine from the configuration.
func NewMachine(cfg Config) *Machine { return cell.New(cfg) }

// --- porting framework (the paper's contribution) -------------------------

// Opcode selects a kernel function in the dispatcher (Listing 1).
type Opcode = core.Opcode

// OpExit terminates a kernel's idle loop.
const OpExit = core.OpExit

// CompletionMode selects polling or interrupt completion notification.
type CompletionMode = core.CompletionMode

// Completion modes.
const (
	Polling   = core.Polling
	Interrupt = core.Interrupt
)

// KernelFunc is one function of an SPE kernel.
type KernelFunc = core.KernelFunc

// KernelSpec describes an SPE kernel assembled from the Listing-1
// dispatcher template.
type KernelSpec = core.KernelSpec

// Interface is the PPE-side SPEInterface stub (Listings 2–3).
type Interface = core.Interface

// Wrapper is a quadword-aligned main-memory data wrapper (§3.3).
type Wrapper = core.Wrapper

// WrapperField declares one wrapper member.
type WrapperField = core.WrapperField

// Addr is a main-memory effective address.
type Addr = mainmem.Addr

// Open loads a kernel on an SPE and returns its stub (thread_open).
func Open(ctx *PPEContext, speID int, spec KernelSpec) (*Interface, error) {
	return core.Open(ctx, speID, spec)
}

// BuildProgram instantiates the dispatcher template for a kernel spec.
func BuildProgram(spec KernelSpec) (Program, error) { return core.BuildProgram(spec) }

// NewWrapper lays out and allocates an aligned data wrapper.
func NewWrapper(mem *Memory, fields ...WrapperField) (*Wrapper, error) {
	return core.NewWrapper(mem, fields...)
}

// Memory is the simulated main memory.
type Memory = mainmem.Memory

// --- time and cost models -------------------------------------------------

// Time is an absolute virtual timestamp; Duration a span of virtual time.
type (
	Time     = sim.Time
	Duration = sim.Duration
)

// Common virtual durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// CostModel is a first-order processor timing model.
type CostModel = cost.Model

// Processor models from the paper's evaluation.
func NewPPEModel() *CostModel     { return cost.NewPPE() }
func NewSPEModel() *CostModel     { return cost.NewSPE() }
func NewDesktopModel() *CostModel { return cost.NewDesktop() }
func NewLaptopModel() *CostModel  { return cost.NewLaptop() }

// --- performance estimator (§4.2) -----------------------------------------

// EstKernel describes one kernel for the Amdahl estimator.
type EstKernel = amdahl.Kernel

// EstGroup is a set of kernels scheduled in parallel.
type EstGroup = amdahl.Group

// EstimateSpeedUp1 evaluates Eq. 1 for a single kernel.
func EstimateSpeedUp1(k EstKernel) (float64, error) { return amdahl.SpeedUp1(k) }

// EstimateSequential evaluates Eq. 2 for sequentially scheduled kernels.
func EstimateSequential(ks []EstKernel) (float64, error) { return amdahl.SpeedUpSequential(ks) }

// EstimateGrouped evaluates Eq. 3 for grouped-parallel kernel schedules.
func EstimateGrouped(gs []EstGroup) (float64, error) { return amdahl.SpeedUpGrouped(gs) }

// --- tracing ---------------------------------------------------------------

// TraceRecorder accumulates per-core activity spans and renders ASCII
// Gantt charts of the schedule (the Fig. 4 view).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty recorder; install it in Config.Tracer.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
