// Package cellport is a library-scale reproduction of "An Effective
// Strategy for Porting C++ Applications on Cell" (Varbanescu, Sips, Ross,
// Liu, Liu, Natsev, Smith — ICPP 2007).
//
// It provides, in pure Go with no dependencies beyond the standard
// library:
//
//   - a deterministic simulated Cell Broadband Engine — one PPE and eight
//     SPEs with enforced 256 KB local stores, MFC DMA queues with the
//     hardware size/alignment rules, 4-deep mailboxes, signal registers,
//     and a max-min-fair EIB bandwidth model — executing in virtual time
//     over a process-oriented discrete-event engine;
//   - the paper's porting framework: the SPEInterface stub
//     (Send / SendAndWait / Wait / Close over the mailbox protocol of
//     §3.5), the SPE-side function-dispatcher template of Listing 1, and
//     quadword-aligned data wrappers;
//   - the §4.2 Amdahl estimator (Eqs. 1–3) for sequential and
//     grouped-parallel kernel schedules;
//   - a virtual-time profiler with call-graph-based, class-bounded kernel
//     identification (§3.2);
//   - the MARVEL case study (§5): four real feature extractors, SVM
//     concept detection, the sequential reference application and its
//     Cell port in naive and optimized variants under the three §5.5
//     scheduling scenarios; and
//   - an experiment harness regenerating Table 1, Figure 6, Figure 7 and
//     the in-text numbers, with paper-vs-measured comparisons.
//
// This package is the façade over the building blocks in internal/; the
// bundled case study and experiment harness live in internal/marvel and
// internal/experiments and are exercised by the cmd/ tools and examples/.
//
// Quick start — port a kernel to a simulated SPE:
//
//	m := cellport.NewMachine(cellport.DefaultConfig())
//	m.RunMain("app", func(ctx *cellport.PPEContext) {
//	    iface, _ := cellport.Open(ctx, 0, cellport.KernelSpec{ ... })
//	    defer iface.Close()
//	    w, _ := cellport.NewWrapper(ctx.Memory(),
//	        cellport.WrapperField{Name: "in", Size: 1024},
//	        cellport.WrapperField{Name: "out", Size: 1024})
//	    defer w.Free()
//	    iface.SendAndWait(1, w.Addr())
//	})
package cellport
